// Command benchdiff compares two perfbench reports (BENCH_*.json) and
// prints per-scenario time ratios, flagging regressions beyond a
// threshold:
//
//	benchdiff old.json new.json                  # report only
//	benchdiff -max-regress 1.25 old.json new.json  # exit 1 on >25% regressions
//	benchdiff -max-regress 1.25 -enforce engine/prefix/shared512x16/warm old.json new.json
//
// For every benchmark present in both reports it prints old and new
// ns/op and the ratio new/old (>1 means the new report is slower).
// With -max-regress R, any scenario whose ratio exceeds R makes the
// command exit nonzero — the knob CI uses to turn a committed baseline
// into an advisory perf gate. With -enforce (comma-separated scenario
// names), only the listed scenarios can fail the run; everything else
// is still reported, with over-threshold ratios marked advisory — the
// graduation path for scenarios new in the current PR, which become
// enforcing once a pinned-box baseline lands. Benchmarks present in
// only one report are listed but never fail the run (suites grow
// across PRs).
//
// Ratios are only meaningful when both reports come from the same kind
// of host; benchdiff prints a warning when the recorded provenance (CPU
// model, GOMAXPROCS) differs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// report mirrors the subset of cmd/perfbench's Report that benchdiff
// consumes (the two commands stay dependency-free of each other; the
// JSON document is the contract).
type report struct {
	Benchtime  string `json:"benchtime"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model"`
	Benchmarks map[string]struct {
		NsPerOp     float64 `json:"ns_op"`
		NsPerToken  float64 `json:"ns_token"`
		AllocsPerOp uint64  `json:"allocs_op"`
	} `json:"benchmarks"`
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return r, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0,
		"fail (exit 1) if any scenario's time ratio new/old exceeds this; 0 disables")
	enforce := flag.String("enforce", "",
		"comma-separated scenario names that -max-regress may fail on; empty enforces every scenario")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress R] [-enforce a,b,...] old.json new.json")
		os.Exit(2)
	}
	enforced := map[string]bool{}
	for _, name := range strings.Split(*enforce, ",") {
		if name = strings.TrimSpace(name); name != "" {
			enforced[name] = true
		}
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	if oldRep.CPUModel != newRep.CPUModel || oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("WARNING: host provenance differs (%q gomaxprocs=%d vs %q gomaxprocs=%d); ratios are advisory\n",
			oldRep.CPUModel, oldRep.GOMAXPROCS, newRep.CPUModel, newRep.GOMAXPROCS)
	}
	if oldRep.Benchtime != newRep.Benchtime {
		fmt.Printf("note: benchtime differs (%s vs %s)\n", oldRep.Benchtime, newRep.Benchtime)
	}

	var names []string
	for name := range oldRep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions, onlyOld, onlyNew []string
	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range names {
		o := oldRep.Benchmarks[name]
		n, ok := newRep.Benchmarks[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		ratio := 0.0
		if o.NsPerOp > 0 {
			ratio = n.NsPerOp / o.NsPerOp
		}
		marker := ""
		if *maxRegress > 0 && ratio > *maxRegress {
			if len(enforced) > 0 && !enforced[name] {
				marker = "  << regression (advisory)"
			} else {
				marker = "  << regression"
				regressions = append(regressions, name)
			}
		}
		fmt.Printf("%-44s %14.0f %14.0f %7.2fx%s\n", name, o.NsPerOp, n.NsPerOp, ratio, marker)
	}
	for name := range newRep.Benchmarks {
		if _, ok := oldRep.Benchmarks[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(onlyNew)
	for _, name := range onlyOld {
		fmt.Printf("%-44s only in %s\n", name, flag.Arg(0))
	}
	for _, name := range onlyNew {
		fmt.Printf("%-44s only in %s\n", name, flag.Arg(1))
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d scenario(s) regressed beyond %.2fx: %v\n",
			len(regressions), *maxRegress, regressions)
		os.Exit(1)
	}
}
