// Command specinferlint runs the project's static-analysis suite
// (internal/lint) over the module and exits non-zero on findings. It is
// part of the CI gate next to go vet and go test -race.
//
// Usage:
//
//	specinferlint [-list] [-only analyzer,...] [packages]
//
// Packages are directory patterns ("./...", "./internal/core", default
// "./..."). Findings print as file:line:col: [analyzer] message. A
// finding is suppressed by a
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specinfer/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "specinferlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "specinferlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specinferlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "specinferlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
