// Command specinferlint runs the project's static-analysis suite
// (internal/lint) over the module and exits non-zero on findings. It is
// part of the CI gate next to go vet and go test -race.
//
// Usage:
//
//	specinferlint [-list] [-json] [-only analyzer,...] [packages]
//
// Packages are directory patterns ("./...", "./internal/core", default
// "./..."). Findings print as file:line:col: [analyzer] message, with
// paths relative to the module root. With -json the findings are
// emitted to stdout as a JSON array (for CI annotation tooling) and the
// human-readable lines go to stderr. A finding is suppressed by a
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// comment on the offending line or the line directly above it. A
// directive that suppresses nothing is itself reported as a stale
// suppression and fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"specinfer/internal/lint"
)

// jsonFinding is the -json wire format for one diagnostic. Columns are
// 1-based, paths are relative to the module root.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	asJSON := flag.Bool("json", false, "emit findings as JSON on stdout (human lines go to stderr)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "specinferlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "specinferlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specinferlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)

	human := os.Stdout
	if *asJSON {
		human = os.Stderr
	}
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		findings = append(findings, jsonFinding{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
		fmt.Fprintf(human, "%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "specinferlint:", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "specinferlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
