# The same verification gate CI runs (.github/workflows/ci.yml), in one
# local command: make check.

GO ?= go

.PHONY: check fmt vet build test race lint bench benchsmoke serve servesmoke

check: fmt vet build race lint benchsmoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Extra flags reach the linter via LINT_FLAGS, e.g.
#   make lint LINT_FLAGS='-json'
#   make lint LINT_FLAGS='-only mutexguard,lockbalance'
LINT_FLAGS ?=

lint:
	$(GO) run ./cmd/specinferlint $(LINT_FLAGS) ./...

# One-iteration pass over the perf microbenchmarks: catches bit-rot in the
# benchmark drivers without paying for a full measurement run.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkForward|BenchmarkEngineIteration|BenchmarkVerifier' -benchtime 1x .

# Run the serving daemon locally (ctrl-C drains gracefully).
serve:
	$(GO) run ./cmd/specinferd -addr 127.0.0.1:8080

# End-to-end daemon smoke: start specinferd, wait for /healthz, run one
# generation, scrape /metricz, then SIGTERM and require a clean exit.
servesmoke:
	./scripts/servesmoke.sh

# Full measurement run with a pinned benchtime; writes BENCH_PR10.json
# (benchmark -> ns/op, ns/token, allocs/op, plus paged-vs-slice,
# paged-vs-reference, batched-vs-reference, prefix-cache warm-vs-cold,
# quantized-vs-float, router affinity-vs-blind, verifier traversal-vs-MSS
# accept-length, and speculation-policy adaptive-vs-static tokens/sec and
# p99 comparisons, with host provenance) at the repo root. Compare two
# reports with `go run ./cmd/benchdiff`.
bench:
	$(GO) run ./cmd/perfbench -benchtime 1s -o BENCH_PR10.json
