# The same verification gate CI runs (.github/workflows/ci.yml), in one
# local command: make check.

GO ?= go

.PHONY: check fmt vet build test race lint

check: fmt vet build race lint

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/specinferlint ./...
